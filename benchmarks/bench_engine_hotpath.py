"""Microbenchmarks for the event-engine hot path.

Targets tracked across PRs (see ``docs/performance.md`` and
``results/BENCH_engine.json``):

* ``test_engine_event_throughput`` — raw dispatch rate through
  :meth:`Engine.run`: a self-rescheduling callback chain seeded with a
  burst of same-timestamp events, mirroring the push/pop mix of a real
  simulation (every event schedules about one successor).
* ``test_smoke_end_to_end_sim`` — one complete ``smoke``-scale
  simulation (GUPS under MGvm), the unit of work the parallel experiment
  fabric fans out.
* ``test_queue_throughput_*`` — queue-discipline microbenches (calendar
  vs heap) under the classic *hold model*: a steady-depth pop-one /
  push-one loop, isolating the queue from dispatch.  The CLI
  ``--queues`` sweep runs the same loop across queue depths.

CLI modes (``PYTHONPATH=src python benchmarks/bench_engine_hotpath.py``):

* *(default / positional path)* — append a measurement to the
  ``BENCH_engine.json`` perf trajectory, stamped with a host
  fingerprint (python, platform, cpu count) so cross-machine
  comparisons can widen their noise margins instead of false-failing.
* ``--check`` — perf guard: measure live events/s and compare against
  the most recent snapshot, failing on a regression beyond the
  timer-noise margin (widened automatically when the snapshot was taken
  on a different host).
* ``--queues`` — print the queue-discipline sweep (heap vs calendar at
  several queue depths).
* ``--hist`` — run one smoke simulation per workload with the fused
  fast path's run-length histogram enabled and print how often fusion
  fires (and how long its runs are) per workload.

``scripts/bench_smoke.sh`` snapshots the default numbers into
``results/BENCH_engine.json``.
"""

import os

from repro.arch.params import scaled_params
from repro.core.config import design
from repro.engine.event_queue import (
    CalendarEventQueue,
    Engine,
    HeapEventQueue,
)
from repro.sim.simulator import clear_trace_cache, simulate
from repro.stats.bench import (
    BENCH_HISTORY_PATH,
    git_revision,
    host_fingerprint,
    load_history,
    select_baseline_snapshot,
)
from repro.workloads.registry import build_kernel

EVENTS = 200_000
FANOUT = 64

#: Hold-model ops per queue-discipline measurement.
QUEUE_OPS = 200_000
#: Queue depths for the --queues sweep (events resident in the queue).
QUEUE_DEPTHS = (16, 256, 4096)

#: Workloads whose fused-path firing rate the --hist mode documents
#: (spanning streaming, random-thrash, graph and dense-linear regimes).
HIST_WORKLOADS = ("GUPS", "J2D", "SPMV", "SYRK", "PR", "RED")

#: --check noise margins.  The default tolerates timer noise plus the
#: ~2x fast/slow regimes CI containers alternate between; when the
#: snapshot being compared against was taken on a *different* host
#: (fingerprint mismatch) the margin widens further — cross-machine
#: events/s are only loosely comparable.
CHECK_MARGIN = 0.55
CHECK_MARGIN_CROSS_HOST = 0.70

#: Sharded-engine guard.  The exact-order sharded drain does strictly
#: more work per event than the single-stream calendar (burst select,
#: window compares, mailbox flushes), so its accesses/s *ratio* to
#: single-stream sits below 1.0 by design — around 0.5-0.7 at 8 shards
#: on one core (see docs/performance.md).  The guard checks the ratio
#: (dimensionless, so far more noise- and host-robust than raw rates)
#: against the snapshot with a margin, plus an absolute floor that
#: catches a sharded drain falling off a cliff even when the snapshot
#: itself is missing the ratio fields.
SHARDED_RATIO_MARGIN = 0.40
SHARDED_RATIO_FLOOR = 0.25

#: Sharded-measurement geometries: (key, workload, chiplets, topology).
SHARDED_CONFIGS = (
    ("ring8", "J2D", 8, "ring"),
    ("a2a4", "GUPS", 4, "all-to-all"),
)


def drive_engine(num_events=EVENTS, fanout=FANOUT):
    """Execute ``num_events`` events through a fresh engine."""
    engine = Engine()
    remaining = [num_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.after(1.0, tick)

    for _ in range(fanout):
        engine.at(0.0, tick)
    engine.run()
    return engine.events_executed


def _noop():
    return None


def _hold_increments(ops, seed=1234):
    """Deterministic per-op time increments mirroring a real simulation:
    mostly small integral latencies (compute gaps, cache hops), a few
    per mille page-fault-class delays that exercise the calendar's
    overflow heap."""
    import random

    rng = random.Random(seed)
    increments = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.004:
            increments.append(20_000.0)  # page-fault-class
        elif roll < 0.25:
            increments.append(float(rng.randint(64, 512)))  # DRAM/link
        else:
            increments.append(float(rng.randint(1, 8)))  # core latencies
    return increments


def drive_queue(queue, ops=QUEUE_OPS, depth=256, increments=None):
    """Hold model: prefill ``depth`` events, then pop-one/push-one
    ``ops`` times at constant depth.  Returns ops executed (== ops)."""
    if increments is None:
        increments = _hold_increments(ops)
    for i in range(depth):
        queue.push(1.0 + (i % 64), _noop)
    pop = queue.pop
    push = queue.push
    for inc in increments:
        t, cb = pop()
        push(t + inc, cb)
    return ops


def queue_discipline_sweep(ops=QUEUE_OPS, depths=QUEUE_DEPTHS, rounds=3):
    """Best-of-``rounds`` hold-model ops/s for each discipline x depth."""
    import time

    increments = _hold_increments(ops)
    out = {}
    for name, factory in (
        ("heap", HeapEventQueue),
        ("calendar", CalendarEventQueue),
    ):
        out[name] = {}
        for depth in depths:
            best = 0.0
            for _ in range(rounds):
                queue = factory()
                start = time.perf_counter()
                drive_queue(queue, ops=ops, depth=depth, increments=increments)
                elapsed = time.perf_counter() - start
                best = max(best, ops / elapsed)
            out[name][depth] = round(best, 1)
    return out


def fused_run_histogram(workloads=HIST_WORKLOADS, scale="smoke", mode="1"):
    """Per-workload fused-path statistics from instrumented smoke runs.

    ``mode`` selects the fusion guard: ``"1"`` (default, provable
    machine-wide window — bit-identical, fires mostly in drain-tail
    phases) or ``"aggressive"`` (CU-local safety only — fires in
    steady state, may shift same-cycle tie order).  Returns
    ``{workload: {"mem_accesses": n, "fused_accesses": n,
    "fused_fraction": f, "run_length_hist": {length: count}}}``.  Uses
    the ``REPRO_SIM_FUSE_HIST`` switch so the histogram insert stays off
    the hot path in normal runs.
    """
    from repro.driver.kernel_launch import launch_kernel
    from repro.sim.simulator import Simulator

    previous = {
        key: os.environ.get(key)
        for key in ("REPRO_SIM_FUSE_HIST", "REPRO_SIM_FUSE")
    }
    os.environ["REPRO_SIM_FUSE_HIST"] = "1"
    os.environ["REPRO_SIM_FUSE"] = mode
    try:
        out = {}
        params = scaled_params(scale)
        for name in workloads:
            clear_trace_cache()
            kernel = build_kernel(name, scale=scale)
            launch = launch_kernel(kernel, params, design("mgvm"))
            simulator = Simulator(launch, params, seed=0)
            stats = simulator.run()
            hist = {}
            fused = 0
            for cu in simulator.cus:
                fused += cu._fused_accesses
                if cu._fuse_hist:
                    for length, count in cu._fuse_hist.items():
                        hist[length] = hist.get(length, 0) + count
            out[name] = {
                "mem_accesses": stats.mem_accesses,
                "fused_accesses": fused,
                "fused_fraction": round(fused / max(stats.mem_accesses, 1), 4),
                "run_length_hist": {
                    str(k): hist[k] for k in sorted(hist)
                },
            }
        return out
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def run_smoke_sim():
    """One end-to-end smoke simulation with a cold trace cache."""
    clear_trace_cache()
    kernel = build_kernel("GUPS", scale="smoke")
    params = scaled_params("smoke")
    return simulate(kernel, params, design("mgvm"), seed=0)


def measure_sharded(rounds=3, configs=SHARDED_CONFIGS):
    """Sharded vs single-stream throughput on the tracked geometries.

    Measures **accesses/s** (``stats.mem_accesses`` over wall-clock),
    not events/s: the fused fast path collapses events, so event counts
    are not comparable across configurations with different fusion
    rates while the memory-access count is an invariant of the
    workload.  Results are verified bit-identical between the two modes
    as a side effect.  Returns ``{key: {"accesses_per_sec": f,
    "sharded_accesses_per_sec": f, "sharded_ratio": f}}``.
    """
    import time

    previous = os.environ.get("REPRO_ENGINE_SHARDS")
    out = {}
    try:
        for key, workload, chiplets, topology in configs:
            rates = {}
            reference = None
            for mode, env in (("single", "0"), ("sharded", "auto")):
                os.environ["REPRO_ENGINE_SHARDS"] = env
                best = 0.0
                for _ in range(rounds):
                    clear_trace_cache()
                    kernel = build_kernel(workload, scale="smoke")
                    params = scaled_params(
                        "smoke", num_chiplets=chiplets, topology=topology
                    )
                    start = time.perf_counter()
                    stats = simulate(kernel, params, design("mgvm"), seed=0)
                    elapsed = time.perf_counter() - start
                    best = max(best, stats.mem_accesses / elapsed)
                rates[mode] = best
                if reference is None:
                    reference = stats
                elif stats != reference:
                    raise AssertionError(
                        "sharded run diverged from single-stream on %s" % key
                    )
            out[key] = {
                "accesses_per_sec": round(rates["single"], 1),
                "sharded_accesses_per_sec": round(rates["sharded"], 1),
                "sharded_ratio": round(rates["sharded"] / rates["single"], 4),
            }
    finally:
        if previous is None:
            os.environ.pop("REPRO_ENGINE_SHARDS", None)
        else:
            os.environ["REPRO_ENGINE_SHARDS"] = previous
    return out


def measure_snapshot(rounds=3, sharded=True):
    """Best-of-``rounds`` numbers for the BENCH_engine.json trajectory."""
    import time

    best_eps = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        executed = drive_engine()
        elapsed = time.perf_counter() - start
        best_eps = max(best_eps, executed / elapsed)

    best_sim = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_smoke_sim()
        best_sim = min(best_sim, time.perf_counter() - start)

    snapshot = {
        "engine_events_per_sec": round(best_eps, 1),
        "smoke_sim_seconds": round(best_sim, 4),
    }
    if sharded:
        for key, rates in measure_sharded(rounds=rounds).items():
            snapshot["%s_accesses_per_sec" % key] = rates["accesses_per_sec"]
            snapshot["%s_sharded_accesses_per_sec" % key] = rates[
                "sharded_accesses_per_sec"
            ]
            snapshot["%s_sharded_ratio" % key] = rates["sharded_ratio"]
    return snapshot


# host_fingerprint / load_history / select_baseline_snapshot moved to
# repro.stats.bench (imported above): bench_obs_overhead.py and the
# telemetry store share them, so the selection logic cannot drift.


def load_latest_snapshot(path=BENCH_HISTORY_PATH):
    """Return the most recent snapshot record, or ``None``.

    Kept for trajectory tooling; perf guards should use
    :func:`select_baseline_snapshot`, which skips stale-labelled
    entries and prefers same-host fingerprints.
    """
    history = load_history(path)
    return history[-1] if history else None


def append_snapshot(path=BENCH_HISTORY_PATH, rounds=3):
    """Append one measurement to the perf-trajectory file (a JSON list)."""
    import datetime
    import json

    snapshot = measure_snapshot(rounds=rounds)
    snapshot["timestamp"] = datetime.datetime.now(
        datetime.timezone.utc
    ).isoformat(timespec="seconds")
    fingerprint = host_fingerprint()
    snapshot["python"] = fingerprint["python"]
    snapshot["host"] = fingerprint
    snapshot["git_rev"] = git_revision()

    history = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                history = json.load(handle)
            if not isinstance(history, list):
                history = []
        except ValueError:
            history = []
    history.append(snapshot)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
    return snapshot


def check_against_snapshot(path="results/BENCH_engine.json", rounds=3,
                           sharded=True):
    """Perf guard: live numbers must not regress beyond the noise
    margins below the selected baseline snapshot.  Returns (ok, report).

    Two checks:

    * raw engine events/s against the snapshot's, with the classic
      (cross-host-widened) margin;
    * the sharded/single accesses/s *ratio* per tracked geometry
      against the snapshot's ratio with :data:`SHARDED_RATIO_MARGIN`,
      plus the absolute :data:`SHARDED_RATIO_FLOOR`.  The ratio is
      dimensionless, so it transfers across hosts where raw rates do
      not.
    """
    baseline, selected = select_baseline_snapshot(path)
    if baseline is None:
        return False, selected
    live = measure_snapshot(rounds=rounds, sharded=sharded)
    margin = CHECK_MARGIN
    same_host = baseline.get("host") == host_fingerprint()
    if not same_host:
        margin = CHECK_MARGIN_CROSS_HOST
    floor = baseline["engine_events_per_sec"] * (1.0 - margin)
    ok = live["engine_events_per_sec"] >= floor
    lines = [
        "baseline: %s" % selected,
        "%s: live %.0f events/s vs snapshot %.0f (floor %.0f, "
        "margin %.0f%%%s)"
        % (
            "pass" if ok else "FAIL",
            live["engine_events_per_sec"],
            baseline["engine_events_per_sec"],
            floor,
            margin * 100,
            "" if same_host else ", cross-host widened",
        ),
    ]
    if sharded:
        for key, _workload, _chiplets, _topology in SHARDED_CONFIGS:
            field = "%s_sharded_ratio" % key
            ratio = live.get(field)
            if ratio is None:
                continue
            ratio_floor = SHARDED_RATIO_FLOOR
            base_ratio = baseline.get(field)
            if base_ratio is not None:
                ratio_floor = max(
                    ratio_floor, base_ratio * (1.0 - SHARDED_RATIO_MARGIN)
                )
            this_ok = ratio >= ratio_floor
            ok = ok and this_ok
            lines.append(
                "%s: %s sharded/single ratio %.3f vs floor %.3f"
                "%s"
                % (
                    "pass" if this_ok else "FAIL",
                    key,
                    ratio,
                    ratio_floor,
                    ""
                    if base_ratio is not None
                    else " (absolute floor; snapshot has no ratio)",
                )
            )
    return ok, "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest-benchmark targets
# ---------------------------------------------------------------------------


def test_engine_event_throughput(benchmark):
    executed = benchmark(drive_engine)
    assert executed >= EVENTS
    benchmark.extra_info["events"] = executed
    benchmark.extra_info["events_per_sec"] = executed / benchmark.stats["mean"]


def test_smoke_end_to_end_sim(benchmark):
    stats = benchmark(run_smoke_sim)
    assert stats.instructions > 0
    benchmark.extra_info["sim_events"] = stats.mem_accesses


def test_queue_throughput_heap(benchmark):
    increments = _hold_increments(QUEUE_OPS)
    ops = benchmark(
        lambda: drive_queue(HeapEventQueue(), increments=increments)
    )
    benchmark.extra_info["ops_per_sec"] = ops / benchmark.stats["mean"]


def test_queue_throughput_calendar(benchmark):
    increments = _hold_increments(QUEUE_OPS)
    ops = benchmark(
        lambda: drive_queue(CalendarEventQueue(), increments=increments)
    )
    benchmark.extra_info["ops_per_sec"] = ops / benchmark.stats["mean"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _main(argv):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="results/BENCH_engine.json",
        help="snapshot trajectory file (default: results/BENCH_engine.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="guard mode: fail if live events/s regressed past the margin",
    )
    parser.add_argument(
        "--queues",
        action="store_true",
        help="print the heap-vs-calendar hold-model sweep across depths",
    )
    parser.add_argument(
        "--hist",
        action="store_true",
        help="print the fused-path run-length histogram per workload",
    )
    args = parser.parse_args(argv)

    if args.check:
        ok, report = check_against_snapshot(path=args.path)
        print(report)
        print("PASS" if ok else "FAIL")
        return 0 if ok else 1
    if args.queues:
        sweep = queue_discipline_sweep()
        print(json.dumps(sweep, indent=2))
        for depth in QUEUE_DEPTHS:
            ratio = sweep["calendar"][depth] / sweep["heap"][depth]
            print(
                "depth %5d: calendar/heap = %.2fx" % (depth, ratio),
                file=sys.stderr,
            )
        return 0
    if args.hist:
        print(
            json.dumps(
                {
                    "provable": fused_run_histogram(mode="1"),
                    "aggressive": fused_run_histogram(mode="aggressive"),
                },
                indent=2,
            )
        )
        return 0
    print(json.dumps(append_snapshot(path=args.path), indent=2))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main(sys.argv[1:]))
