"""Microbenchmarks for the event-engine hot path.

Two targets track the per-event cost across PRs (see
``docs/performance.md`` and ``results/BENCH_engine.json``):

* ``test_engine_event_throughput`` — raw dispatch rate through
  :meth:`Engine.run`: a self-rescheduling callback chain seeded with a
  burst of same-timestamp events, mirroring the push/pop mix of a real
  simulation (every event schedules about one successor).
* ``test_smoke_end_to_end_sim`` — one complete ``smoke``-scale
  simulation (GUPS under MGvm), the unit of work the parallel experiment
  fabric fans out.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py``;
``scripts/bench_smoke.sh`` snapshots the same numbers into
``results/BENCH_engine.json``.
"""

from repro.arch.params import scaled_params
from repro.core.config import design
from repro.engine.event_queue import Engine
from repro.sim.simulator import clear_trace_cache, simulate
from repro.workloads.registry import build_kernel

EVENTS = 200_000
FANOUT = 64


def drive_engine(num_events=EVENTS, fanout=FANOUT):
    """Execute ``num_events`` events through a fresh engine."""
    engine = Engine()
    remaining = [num_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.after(1.0, tick)

    for _ in range(fanout):
        engine.at(0.0, tick)
    engine.run()
    return engine.events_executed


def run_smoke_sim():
    """One end-to-end smoke simulation with a cold trace cache."""
    clear_trace_cache()
    kernel = build_kernel("GUPS", scale="smoke")
    params = scaled_params("smoke")
    return simulate(kernel, params, design("mgvm"), seed=0)


def measure_snapshot(rounds=3):
    """Best-of-``rounds`` numbers for the BENCH_engine.json trajectory."""
    import time

    best_eps = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        executed = drive_engine()
        elapsed = time.perf_counter() - start
        best_eps = max(best_eps, executed / elapsed)

    best_sim = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_smoke_sim()
        best_sim = min(best_sim, time.perf_counter() - start)

    return {
        "engine_events_per_sec": round(best_eps, 1),
        "smoke_sim_seconds": round(best_sim, 4),
    }


def append_snapshot(path="results/BENCH_engine.json", rounds=3):
    """Append one measurement to the perf-trajectory file (a JSON list)."""
    import datetime
    import json
    import os
    import platform
    import subprocess

    snapshot = measure_snapshot(rounds=rounds)
    snapshot["timestamp"] = datetime.datetime.now(
        datetime.timezone.utc
    ).isoformat(timespec="seconds")
    snapshot["python"] = platform.python_version()
    try:
        snapshot["git_rev"] = (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except (OSError, subprocess.CalledProcessError):
        snapshot["git_rev"] = None

    history = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                history = json.load(handle)
            if not isinstance(history, list):
                history = []
        except ValueError:
            history = []
    history.append(snapshot)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
    return snapshot


def test_engine_event_throughput(benchmark):
    executed = benchmark(drive_engine)
    assert executed >= EVENTS
    benchmark.extra_info["events"] = executed
    benchmark.extra_info["events_per_sec"] = executed / benchmark.stats["mean"]


def test_smoke_end_to_end_sim(benchmark):
    stats = benchmark(run_smoke_sim)
    assert stats.instructions > 0
    benchmark.extra_info["sim_events"] = stats.mem_accesses


if __name__ == "__main__":
    import json
    import sys

    out = append_snapshot(
        path=sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_engine.json"
    )
    print(json.dumps(out, indent=2))
