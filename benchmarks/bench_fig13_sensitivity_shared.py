"""Figure 13: MGvm sensitivity variants, normalized to shared."""

from repro.experiments.figures import figure13


def test_figure13(regenerate):
    result = regenerate(figure13)
    assert result.rows[-1][0] == "Gmean"
