#!/usr/bin/env python3
"""Watch dHSL-balance detect imbalance and switch the HSL at runtime.

Runs SYRK (whose in-flight CTA wave hammers one leaf-PTE region at a
time) under full MGvm and prints the runtime telemetry of Section V:
per-chiplet incoming translation requests, RTU alerts, the command
processor's switch decision, and the throughput effect of balancing
versus MGvm-no-balance.

Usage::

    python examples/balance_switching.py [workload] [scale]
"""

import sys

from repro import build_kernel, design, scaled_params
from repro.driver.kernel_launch import launch_kernel
from repro.sim.simulator import Simulator


def run(kernel, params, design_name):
    launch = launch_kernel(kernel, params, design(design_name))
    simulator = Simulator(launch, params)
    stats = simulator.run()
    return simulator, stats


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "SYRK"
    scale = sys.argv[2] if len(sys.argv) > 2 else "default"
    params = scaled_params(scale)
    kernel = build_kernel(workload, scale=scale)

    print("=== %s under MGvm (dHSL-balance enabled) ===" % workload)
    simulator, stats = run(kernel, params, "mgvm")
    hsl = simulator.launch.hsl
    print("dHSL-coarse granularity: %d KB" % (hsl.coarse_granularity // 1024))
    print("incoming translation requests per chiplet: %s"
          % stats.per_chiplet_incoming)
    print("RTU alerts raised: %d" % stats.balance_alerts)
    if stats.balance_switches:
        for time, mode in stats.balance_switches:
            print("cycle %.0f: command processor switched HSL to %r"
                  % (time, mode))
    else:
        print("no switch: traffic stayed balanced (or hit rate too low)")
    print("L2 TLB hit rate: %.2f, MPKI: %.1f, throughput: %.3f instr/cycle"
          % (stats.l2_hit_rate, stats.mpki, stats.throughput))

    print()
    print("=== same kernel with dHSL-balance disabled ===")
    _, frozen = run(kernel, params, "mgvm-nobalance")
    print("incoming translation requests per chiplet: %s"
          % frozen.per_chiplet_incoming)
    print("throughput: %.3f instr/cycle" % frozen.throughput)

    if frozen.throughput > 0:
        gain = stats.throughput / frozen.throughput
        print()
        print("dHSL-balance speedup over MGvm-no-balance: %.2fx" % gain)


if __name__ == "__main__":
    main()
