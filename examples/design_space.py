#!/usr/bin/env python3
"""Design-space exploration: private vs shared vs MGvm across workloads.

Reproduces the Section-III analysis of the paper on a chosen set of
workloads: for each design it reports normalized throughput, the Figure-4
style breakdown of where L1-TLB-miss cycles go, and the Figure-5 split of
page-walk accesses into local and remote.

Usage::

    python examples/design_space.py [scale] [workload ...]

e.g. ``python examples/design_space.py smoke GUPS J1D MT``.
"""

import sys

from repro.experiments.figures import figure3, figure4, figure5
from repro.experiments.runner import ExperimentRunner


def main():
    args = sys.argv[1:]
    scale = args[0] if args else "smoke"
    workloads = args[1:] or ["GUPS", "J1D", "MT", "SPMV"]

    runner = ExperimentRunner(scale=scale)
    print("Design-space exploration at scale=%s over %s" % (scale, workloads))
    print()
    for build in (figure3, figure4, figure5):
        result = build(runner, workloads=workloads)
        print(result.text())
        print()

    print(
        "Reading guide: workloads whose pages partition cleanly across\n"
        "chiplets (NL class, e.g. J1D) lose throughput under the shared\n"
        "TLB from remote lookups and remote page walks, while TLB-\n"
        "thrashing workloads (GUPS, SPMV) gain from aggregate capacity —\n"
        "the paper's Section III conclusion that no single static design\n"
        "wins everywhere."
    )


if __name__ == "__main__":
    main()
