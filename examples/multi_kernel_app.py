#!/usr/bin/env python3
"""Multi-kernel application: a different HSL for every kernel.

The "d" in dHSL is *dynamic*: MGvm reprograms the home-slice-selection
function at every kernel launch from that kernel's LASP analysis.  This
example chains three kernels with very different locality (a streaming
Jacobi sweep, a random-access GUPS phase, and a rank-update) into one
application, runs it under private / shared / MGvm, and shows the
per-kernel granularity MGvm chose.

Usage::

    python examples/multi_kernel_app.py [scale]
"""

import sys

from repro import build_kernel, design, scaled_params
from repro.sim.application import simulate_application
from repro.stats.report import format_table


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    params = scaled_params(scale)
    kernels = [
        build_kernel("J1D", scale=scale),
        build_kernel("GUPS", scale=scale),
        build_kernel("SYRK", scale=scale),
    ]
    print(
        "Application: %s on a %d-chiplet GPU (scale=%s)"
        % (" -> ".join(k.name for k in kernels), params.num_chiplets, scale)
    )

    results = {}
    for name in ("private", "shared", "mgvm"):
        results[name] = simulate_application(kernels, params, design(name))

    mgvm = results["mgvm"]
    print()
    print("MGvm's per-kernel dHSL-coarse granularity:")
    for kernel_name, granularity in zip(mgvm.kernel_names, mgvm.hsl_granularities):
        print("  %-5s -> %d KB" % (kernel_name, granularity // 1024))

    print()
    rows = []
    base = results["private"].throughput
    for name, result in results.items():
        rows.append(
            [
                name,
                result.throughput / base if base else 0.0,
                result.mpki,
                result.total_cycles,
            ]
        )
    print(format_table(["design", "speedup", "mpki", "total cycles"], rows))


if __name__ == "__main__":
    main()
