#!/usr/bin/env python3
"""Define your own GPU kernel and run it through the full VM stack.

Shows the public workload API: describe allocations (with an optional
LASP block-size hint standing in for static index analysis), write a
trace function emitting each CTA's coalesced accesses, pick a LASP class
and CTA partition — then simulate under any design.

The example kernel is a tiled histogram: every CTA streams its own input
tile (perfectly partitionable) while updating a small shared bin array
from every chiplet, a miniature version of the mixed locality that makes
MCM virtual memory interesting.
"""

import numpy as np

from repro import design, scaled_params, simulate
from repro.workloads.base import (
    AllocationSpec,
    KernelSpec,
    interleave,
    streaming,
    tile_of,
    uniform_random,
)

KB = 1024
MB = 1024 * KB


def histogram_trace(cta_id, ctx):
    """One CTA: stream an input tile, scatter updates into shared bins."""
    rng = ctx.rng(cta_id)
    start, extent = tile_of(cta_id, ctx.num_ctas, ctx.size("input"))
    count = min(256, extent // 64)
    reads = streaming(ctx.base("input"), start, count, stride=64)
    updates = uniform_random(rng, ctx.base("bins"), ctx.size("bins"), count)
    return interleave(reads, updates)


def build_histogram():
    return KernelSpec(
        name="HIST",
        lasp_class="NL",  # the dominant (input) allocation partitions cleanly
        allocations=[
            AllocationSpec("input", 8 * MB),
            AllocationSpec("bins", 256 * KB),
        ],
        num_ctas=256,
        trace=histogram_trace,
        compute_gap=2,
        cta_partition="blocked",
        notes="Tiled histogram: streamed tiles + shared bin scatter.",
    )


def main():
    kernel = build_histogram()
    params = scaled_params("smoke")
    print("Custom kernel %r: %.1f MB over %d allocations, %d CTAs" % (
        kernel.name,
        kernel.footprint / MB,
        len(kernel.allocations),
        kernel.num_ctas,
    ))
    print()
    baseline = None
    for name in ("private", "shared", "mgvm"):
        stats = simulate(kernel, params, design(name))
        baseline = baseline or stats.throughput
        print(
            "%-8s speedup %.2fx  mpki %7.1f  local-hit %4.0f%%  remote-PW %4.0f%%"
            % (
                name,
                stats.throughput / baseline,
                stats.mpki,
                100 * stats.local_hit_fraction,
                100 * stats.pw_remote_fraction,
            )
        )
    print()
    print("The shared bin array pulls lookups off-chiplet; MGvm keeps the")
    print("streamed tiles local and pins their leaf PTEs to the home slice.")


if __name__ == "__main__":
    main()
