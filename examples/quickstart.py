#!/usr/bin/env python3
"""Quickstart: simulate one workload under the paper's four VM designs.

Runs GUPS (the TLB-thrashing random-access kernel) on a 4-chiplet MCM GPU
under private TLB, shared TLB, MGvm-no-balance and full MGvm, and prints
the headline metrics the paper reports: throughput, L2 TLB MPKI, the
fraction of L2 TLB lookups served locally, and the fraction of page-walk
memory accesses that crossed the interconnect.

Usage::

    python examples/quickstart.py [workload] [scale]

e.g. ``python examples/quickstart.py SPMV default``.
"""

import sys

from repro import build_kernel, design, scaled_params, simulate
from repro.stats.report import format_table


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "GUPS"
    scale = sys.argv[2] if len(sys.argv) > 2 else "smoke"

    params = scaled_params(scale)
    kernel = build_kernel(workload, scale=scale)
    print(
        "Simulating %s (%s, %.1f MB footprint) on a %d-chiplet GPU, scale=%s"
        % (
            kernel.name,
            kernel.lasp_class,
            kernel.footprint / 2**20,
            params.num_chiplets,
            scale,
        )
    )

    rows = []
    baseline = None
    for name in ("private", "shared", "mgvm-nobalance", "mgvm"):
        stats = simulate(kernel, params, design(name))
        if baseline is None:
            baseline = stats.throughput
        rows.append(
            [
                name,
                stats.throughput / baseline,
                stats.mpki,
                stats.local_hit_fraction,
                stats.pw_remote_fraction,
                len(stats.balance_switches),
            ]
        )

    print()
    print(
        format_table(
            [
                "design",
                "speedup",
                "L2 TLB MPKI",
                "local hit frac",
                "remote PW frac",
                "HSL switches",
            ],
            rows,
        )
    )
    print()
    print("speedup is normalized to the private-TLB design, as in the paper.")


if __name__ == "__main__":
    main()
